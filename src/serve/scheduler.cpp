#include "serve/scheduler.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/require.hpp"
#include "md/engine.hpp"
#include "md/scene_io.hpp"

namespace mwx::serve {

BatchScheduler::BatchScheduler(SchedulerConfig config)
    : config_(config), cache_(config.scene_cache_entries) {
  require(config_.n_pools > 0, "scheduler needs at least one pool");
  require(config_.threads_per_pool > 0, "pools need at least one thread");
  require(config_.max_drivers > 0, "scheduler needs at least one driver");
  require(config_.max_queued_total > 0, "global admission cap must be positive");
  require(config_.preempt_slice_steps >= 0, "preempt_slice_steps must be non-negative");
  pools_.reserve(static_cast<std::size_t>(config_.n_pools));
  for (int p = 0; p < config_.n_pools; ++p) {
    pools_.push_back(std::make_unique<parallel::FixedThreadPool>(parallel::ThreadPoolConfig{
        .n_threads = config_.threads_per_pool,
        .queue_mode = config_.queue_mode,
        .pin_masks = {},
        .name_prefix = "mwx-serve-" + std::to_string(p)}));
  }
  shard_cost_.assign(static_cast<std::size_t>(config_.n_pools), 0.0);
  paused_ = config_.start_paused;
  drivers_.reserve(static_cast<std::size_t>(config_.max_drivers));
  for (int d = 0; d < config_.max_drivers; ++d) {
    drivers_.emplace_back([this] { driver_main(); });
  }
}

BatchScheduler::~BatchScheduler() { stop(); }

double BatchScheduler::slice_cost(const JobRequest& request, int quantum) {
  // Work proxy: quantum steps × scene bytes.  The .mws text is ~one line per
  // atom, so bytes ∝ atoms and cost ∝ steps × atoms — close enough to true
  // work for fair-share and shard-balance purposes without parsing at
  // dispatch time.  Charged per quantum, so a preempted job pays for the
  // slice it ran, not its full length up front.
  return static_cast<double>(quantum) *
         static_cast<double>(std::max<std::size_t>(1, request.scene_text.size()));
}

std::shared_ptr<JobTicket> BatchScheduler::submit(JobRequest request) {
  auto reject = [this](JobRequest req, const std::string& why) {
    auto ticket = std::make_shared<JobTicket>(std::move(req));
    ticket->mark_submitted();
    ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", why);
    std::lock_guard lock(mutex_);
    ++stats_.rejected;
    return ticket;
  };

  if (request.scene_text.empty()) return reject(std::move(request), "empty scene");
  if (request.steps <= 0) return reject(std::move(request), "steps must be positive");
  if (request.n_threads <= 0 || request.chunks_per_thread <= 0) {
    return reject(std::move(request), "decomposition width must be positive");
  }
  if (request.sample_interval < 0) {
    return reject(std::move(request), "sample_interval must be non-negative");
  }
  if (request.deadline_ms < 0.0) {
    return reject(std::move(request), "deadline_ms must be non-negative");
  }

  auto ticket = std::make_shared<JobTicket>(std::move(request));
  ticket->set_sample_cap(config_.max_samples_per_job);
  ticket->mark_submitted();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "scheduler is stopping");
      ++stats_.rejected;
      return ticket;
    }
    auto [it, inserted] = tenants_.try_emplace(ticket->request().tenant);
    Tenant& tenant = it->second;
    if (inserted) tenant.quota = config_.default_quota;
    if (queued_total_ >= config_.max_queued_total) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "global queue full");
      ++stats_.rejected;
      return ticket;
    }
    if (static_cast<int>(tenant.queue.size()) >= tenant.quota.max_queued) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "tenant queue full");
      ++stats_.rejected;
      return ticket;
    }
    // A tenant going from idle to backlogged joins at the current virtual
    // clock: it competes fairly from now on but cannot spend an idle period
    // as hoarded credit.
    if (tenant.queue.empty()) tenant.vtime = std::max(tenant.vtime, vclock_);
    tenant.queue.push_back(ticket);
    ++queued_total_;
    ++stats_.accepted;
  }
  cv_.notify_one();
  return ticket;
}

void BatchScheduler::set_quota(const std::string& tenant, TenantQuota quota) {
  require(quota.weight > 0.0, "tenant weight must be positive");
  require(quota.max_queued > 0, "tenant admission cap must be positive");
  std::lock_guard lock(mutex_);
  tenants_.try_emplace(tenant).first->second.quota = quota;
}

void BatchScheduler::start() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void BatchScheduler::drain() {
  {
    std::lock_guard lock(mutex_);
    // Wake-and-run: drain() promises completion of every accepted job, and
    // paused drivers never pick work — waiting on them with a non-empty
    // queue deadlocked here before this release was added.
    paused_ = false;
  }
  cv_.notify_all();
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_total_ == 0 && running_ == 0; });
}

void BatchScheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused scheduler still owes its accepted jobs
  }
  cv_.notify_all();
  // Serialize the teardown: concurrent stop() callers (including ~) queue
  // here, and each returns only once drivers are joined and pools are down
  // (pool shutdown itself is idempotent).
  std::lock_guard stop_lock(stop_mutex_);
  {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queued_total_ == 0 && running_ == 0; });
  }
  std::vector<std::thread> drivers;
  {
    std::lock_guard lock(mutex_);
    drivers.swap(drivers_);
  }
  for (auto& d : drivers) {
    if (d.joinable()) d.join();
  }
  for (auto& pool : pools_) pool->shutdown();
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<double> BatchScheduler::shard_costs() const {
  std::lock_guard lock(mutex_);
  return shard_cost_;
}

bool BatchScheduler::pick_job_locked(Dispatch* out) {
  Tenant* tenant = nullptr;
  std::deque<std::shared_ptr<JobTicket>>::iterator pos;

  if (config_.mode == SchedMode::Deadline) {
    // EDF: earliest absolute deadline among jobs that carry one.  Ties (and
    // the no-deadline-jobs case) resolve deterministically: tenants_ is an
    // ordered map and each queue is FIFO.
    JobTicket::Clock::time_point best = JobTicket::Clock::time_point::max();
    for (auto& [name, t] : tenants_) {
      for (auto it = t.queue.begin(); it != t.queue.end(); ++it) {
        if ((*it)->request().deadline_ms <= 0.0) continue;
        if ((*it)->deadline_at_ < best) {
          best = (*it)->deadline_at_;
          tenant = &t;
          pos = it;
        }
      }
    }
  }
  if (tenant == nullptr) {
    // Fair-share pick (SchedMode::FairShare, or Deadline with no deadline
    // job queued): backlogged tenant with minimum virtual time, FIFO within.
    for (auto& [name, t] : tenants_) {
      if (t.queue.empty()) continue;
      if (tenant == nullptr || t.vtime < tenant->vtime) tenant = &t;
    }
    if (tenant == nullptr) return false;
    pos = tenant->queue.begin();
  }

  std::shared_ptr<JobTicket> job = std::move(*pos);
  tenant->queue.erase(pos);
  --queued_total_;

  const int remaining =
      job->request().steps - static_cast<int>(job->steps_completed());
  int quantum = remaining;
  if (config_.preempt_slice_steps > 0) {
    quantum = std::min(quantum, config_.preempt_slice_steps);
  }
  const double cost = slice_cost(job->request(), quantum);
  vclock_ = tenant->vtime;
  tenant->vtime += cost / tenant->quota.weight;

  // Least outstanding dispatched *cost*, not running-job count: with counts,
  // one shard can collect every oversized job while the other idles through
  // its 50-step neighbors.
  int shard = 0;
  for (int p = 1; p < config_.n_pools; ++p) {
    if (shard_cost_[static_cast<std::size_t>(p)] <
        shard_cost_[static_cast<std::size_t>(shard)]) {
      shard = p;
    }
  }
  shard_cost_[static_cast<std::size_t>(shard)] += cost;
  ++running_;
  out->job = std::move(job);
  out->shard = shard;
  out->quantum = quantum;
  out->cost = cost;
  return true;
}

void BatchScheduler::driver_main() {
  for (;;) {
    Dispatch d;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return (!paused_ && queued_total_ > 0) || (stopping_ && queued_total_ == 0);
      });
      if (queued_total_ == 0) return;  // stopping and fully drained
      if (!pick_job_locked(&d)) continue;
      d.job->mark_running(d.shard);
    }

    const bool preempted = run_job(*d.job, d.shard, d.quantum);

    {
      std::lock_guard lock(mutex_);
      shard_cost_[static_cast<std::size_t>(d.shard)] -= d.cost;
      --running_;
      if (preempted) {
        // Re-enqueue the continuation on its tenant's FIFO under the same
        // lock as the running_ decrement, so drain()/stop() never observe a
        // preempted-but-unqueued job as "idle".  No vtime rejoin bump: the
        // tenant was being served, not idle, and already paid for the slice.
        tenants_.find(d.job->request().tenant)->second.queue.push_back(d.job);
        ++queued_total_;
        ++stats_.preemptions;
      } else if (d.job->status() == JobStatus::Done) {
        ++stats_.completed;
      } else {
        ++stats_.failed;
      }
    }
    idle_cv_.notify_all();
    // A queued job (possibly the continuation) may be waiting for a driver.
    cv_.notify_one();
  }
}

bool BatchScheduler::run_job(JobTicket& job, int shard, int quantum) {
  const JobRequest& req = job.request();
  try {
    md::EngineConfig cfg;
    cfg.n_threads = req.n_threads;
    cfg.chunks_per_thread = req.chunks_per_thread;
    cfg.assignment = req.assignment;
    cfg.dt_fs = req.dt_fs;
    cfg.cutoff = req.cutoff;
    cfg.skin = req.skin;

    std::optional<md::Engine> engine;
    const long long base = job.steps_completed();
    if (base == 0) {
      const std::shared_ptr<const md::MolecularSystem> cached = cache_.load(req.scene_text);
      engine.emplace(*cached, cfg);  // private copy; the cache stays immutable
    } else {
      // Continuation: restore the checkpointed trajectory bit-exactly —
      // positions/velocities/accelerations from the "mws 2" text, the
      // neighbor list rebuilt from its reference snapshot (see
      // Engine::restore_continuation for why both are load-bearing).
      std::istringstream is(job.checkpoint_text());
      std::vector<Vec3> refs;
      md::MolecularSystem sys = md::load_scene(is, &refs);
      engine.emplace(std::move(sys), cfg);
      engine->restore_continuation(refs);
    }

    parallel::FixedThreadPool& pool = *pools_[static_cast<std::size_t>(shard)];
    const int si = req.sample_interval;
    const long long steps = req.steps;
    long long total = base;
    long long end = base + quantum;
    while (total < steps) {
      if (total == end) {
        // Quantum exhausted with steps left.  During stop() the quantum
        // extends to completion instead: shutdown owes every accepted job a
        // terminal state and gains nothing from further requeues.
        bool preempt = false;
        {
          std::lock_guard lock(mutex_);
          preempt = !stopping_;
        }
        if (preempt) {
          job.record_preemption(checkpoint_text(*engine), total - base);
          return true;
        }
        end = steps;
      }
      // Run to the next sample boundary on the *global* step grid (or the
      // quantum/job end), so a preempted job streams samples at exactly the
      // steps an uninterrupted run would.
      long long next = end;
      if (si > 0) next = std::min(next, (total / si + 1) * static_cast<long long>(si));
      engine->run_native(pool, static_cast<int>(next - total));
      total = next;
      const bool at_job_end = total == steps;
      if (si > 0 ? (total % si == 0 || at_job_end) : at_job_end) {
        job.push_sample({total, engine->potential_energy(), engine->kinetic_energy()});
      }
    }
    job.finish(JobStatus::Done, engine->potential_energy(), engine->kinetic_energy(),
               req.return_scene ? scene_text(engine->system()) : "", "");
    return false;
  } catch (const std::exception& e) {
    job.finish(JobStatus::Failed, 0.0, 0.0, "", e.what());
    return false;
  } catch (...) {
    job.finish(JobStatus::Failed, 0.0, 0.0, "", "unknown exception");
    return false;
  }
}

}  // namespace mwx::serve
