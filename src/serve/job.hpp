// mwx::serve job vocabulary — what a client submits and what it streams back.
//
// The ROADMAP's "simulation-as-a-service" shape, in the mold of MPJ
// Express's runtime daemon: a client hands the scheduler a Job (scene + step
// budget + decomposition width) and receives a JobTicket, a shared handle it
// can poll or block on while the scheduler runs the job over the shared
// worker pools.  Observables stream into the ticket as Samples at the
// requested cadence; the final energies (and optionally the final scene — a
// trajectory endpoint that can be resubmitted to continue the run) land on
// the ticket when the job finishes.
//
// Determinism contract: a job's energies are bit-identical to running the
// same scene + EngineConfig on a dedicated single-engine pool, no matter how
// many tenants share the pools — the engine's accumulation-slot chains fix
// the floating-point order by n_threads alone (see md/engine.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "sim/access.hpp"

namespace mwx::serve {

enum class JobStatus {
  Queued,    // accepted, waiting for a driver
  Running,   // stepping on a shard
  Done,      // all steps completed; final energies valid
  Failed,    // a step or the scene parse threw; error() has the message
  Rejected,  // admission control refused it; never ran
};

[[nodiscard]] inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
    case JobStatus::Rejected: return "rejected";
  }
  return "?";
}

// One streamed observable record.
struct Sample {
  long long step = 0;
  double pe = 0.0;  // potential energy, engine units
  double ke = 0.0;  // kinetic energy
};

struct JobRequest {
  std::string tenant = "default";  // fair-share / quota bucket
  // The scene as an .mws document (md/scene_io).  Also the scene-cache key:
  // scene_io is byte-stable, so identical systems serialize identically and
  // deduplicate to one parse.
  std::string scene_text;
  int steps = 100;
  // Decomposition width: fixes n_slots and therefore the energy bits.  NOT
  // the number of threads the job gets — workers are shared property of the
  // scheduler's pools.
  int n_threads = 2;
  int chunks_per_thread = 1;
  sim::Assignment assignment = sim::Assignment::Static;
  // Stream (step, pe, ke) every `sample_interval` steps; 0 = final sample
  // only.
  int sample_interval = 0;
  // Stream back the final scene (save_scene of the end state).
  bool return_scene = false;
  // Integrator/cutoff parameters (scene files carry geometry, not these).
  double dt_fs = 2.0;
  double cutoff = 8.0;
  double skin = 0.9;
};

// Shared client/scheduler handle for one submitted job.  Clients hold it as
// a shared_ptr; every accessor is thread-safe.
class JobTicket {
 public:
  explicit JobTicket(JobRequest request) : request_(std::move(request)) {}

  JobTicket(const JobTicket&) = delete;
  JobTicket& operator=(const JobTicket&) = delete;

  [[nodiscard]] const JobRequest& request() const { return request_; }

  [[nodiscard]] JobStatus status() const {
    std::lock_guard lock(mutex_);
    return status_;
  }

  // Blocks until the job reaches a terminal state (Done/Failed/Rejected).
  void wait() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] {
      return status_ == JobStatus::Done || status_ == JobStatus::Failed ||
             status_ == JobStatus::Rejected;
    });
  }

  // Snapshot of the observables streamed so far (monotone in step).
  [[nodiscard]] std::vector<Sample> samples() const {
    std::lock_guard lock(mutex_);
    return samples_;
  }

  // Final energies — valid once status() == Done.
  [[nodiscard]] double potential_energy() const {
    std::lock_guard lock(mutex_);
    return final_pe_;
  }
  [[nodiscard]] double kinetic_energy() const {
    std::lock_guard lock(mutex_);
    return final_ke_;
  }
  [[nodiscard]] double total_energy() const {
    std::lock_guard lock(mutex_);
    return final_pe_ + final_ke_;
  }

  // Failure / rejection reason ("" otherwise).
  [[nodiscard]] std::string error() const {
    std::lock_guard lock(mutex_);
    return error_;
  }

  // Final scene text when request().return_scene was set ("" otherwise).
  [[nodiscard]] std::string final_scene() const {
    std::lock_guard lock(mutex_);
    return final_scene_;
  }

  // Submit-to-terminal latency and submit-to-start queueing delay, seconds.
  // Valid once terminal (0 for rejected start time).
  [[nodiscard]] double latency_seconds() const {
    std::lock_guard lock(mutex_);
    return latency_seconds_;
  }
  [[nodiscard]] double queue_seconds() const {
    std::lock_guard lock(mutex_);
    return queue_seconds_;
  }

 private:
  friend class BatchScheduler;
  using Clock = std::chrono::steady_clock;

  void mark_submitted() {
    std::lock_guard lock(mutex_);
    submitted_at_ = Clock::now();
  }

  void mark_running() {
    std::lock_guard lock(mutex_);
    status_ = JobStatus::Running;
    queue_seconds_ = std::chrono::duration<double>(Clock::now() - submitted_at_).count();
  }

  void push_sample(const Sample& s) {
    std::lock_guard lock(mutex_);
    samples_.push_back(s);
  }

  void finish(JobStatus terminal, double pe, double ke, std::string scene,
              std::string error) {
    std::lock_guard lock(mutex_);
    status_ = terminal;
    final_pe_ = pe;
    final_ke_ = ke;
    final_scene_ = std::move(scene);
    error_ = std::move(error);
    latency_seconds_ = std::chrono::duration<double>(Clock::now() - submitted_at_).count();
    cv_.notify_all();
  }

  JobRequest request_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::Queued;
  std::vector<Sample> samples_;
  double final_pe_ = 0.0;
  double final_ke_ = 0.0;
  std::string final_scene_;
  std::string error_;
  Clock::time_point submitted_at_ = Clock::now();
  double latency_seconds_ = 0.0;
  double queue_seconds_ = 0.0;
};

}  // namespace mwx::serve
