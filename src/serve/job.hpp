// mwx::serve job vocabulary — what a client submits and what it streams back.
//
// The ROADMAP's "simulation-as-a-service" shape, in the mold of MPJ
// Express's runtime daemon: a client hands the scheduler a Job (scene + step
// budget + decomposition width) and receives a JobTicket, a shared handle it
// can poll or block on while the scheduler runs the job over the shared
// worker pools.  Observables stream into the ticket as Samples at the
// requested cadence; the final energies (and optionally the final scene — a
// trajectory endpoint that can be resubmitted to continue the run) land on
// the ticket when the job finishes.
//
// Determinism contract: a job's energies are bit-identical to running the
// same scene + EngineConfig on a dedicated single-engine pool, no matter how
// many tenants share the pools — the engine's accumulation-slot chains fix
// the floating-point order by n_threads alone (see md/engine.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "sim/access.hpp"

namespace mwx::serve {

enum class JobStatus {
  Queued,    // accepted, waiting for a driver
  Running,   // stepping on a shard
  Done,      // all steps completed; final energies valid
  Failed,    // a step or the scene parse threw; error() has the message
  Rejected,  // admission control refused it; never ran
};

[[nodiscard]] inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
    case JobStatus::Rejected: return "rejected";
  }
  return "?";
}

// One streamed observable record.
struct Sample {
  long long step = 0;
  double pe = 0.0;  // potential energy, engine units
  double ke = 0.0;  // kinetic energy
};

struct JobRequest {
  std::string tenant = "default";  // fair-share / quota bucket
  // The scene as an .mws document (md/scene_io).  Also the scene-cache key:
  // scene_io is byte-stable, so identical systems serialize identically and
  // deduplicate to one parse.
  std::string scene_text;
  int steps = 100;
  // Decomposition width: fixes n_slots and therefore the energy bits.  NOT
  // the number of threads the job gets — workers are shared property of the
  // scheduler's pools.
  int n_threads = 2;
  int chunks_per_thread = 1;
  sim::Assignment assignment = sim::Assignment::Static;
  // Stream (step, pe, ke) every `sample_interval` steps; 0 = final sample
  // only.
  int sample_interval = 0;
  // Stream back the final scene (save_scene of the end state).
  bool return_scene = false;
  // Latency SLO: the job should reach a terminal state within `deadline_ms`
  // of submission.  0 = no deadline.  Under SchedMode::Deadline the
  // scheduler orders deadline jobs earliest-deadline-first; in every mode
  // the ticket's deadline_missed() reports whether the SLO held.
  double deadline_ms = 0.0;
  // Integrator/cutoff parameters (scene files carry geometry, not these).
  double dt_fs = 2.0;
  double cutoff = 8.0;
  double skin = 0.9;
};

// Shared client/scheduler handle for one submitted job.  Clients hold it as
// a shared_ptr; every accessor is thread-safe.
class JobTicket {
 public:
  explicit JobTicket(JobRequest request) : request_(std::move(request)) {}

  JobTicket(const JobTicket&) = delete;
  JobTicket& operator=(const JobTicket&) = delete;

  [[nodiscard]] const JobRequest& request() const { return request_; }

  [[nodiscard]] JobStatus status() const {
    std::lock_guard lock(mutex_);
    return status_;
  }

  // Blocks until the job reaches a terminal state (Done/Failed/Rejected).
  void wait() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] {
      return status_ == JobStatus::Done || status_ == JobStatus::Failed ||
             status_ == JobStatus::Rejected;
    });
  }

  // Snapshot of the observables streamed so far (monotone in step).  When a
  // sample cap is set (BatchScheduler does), this is a ring of the most
  // recent samples; samples_dropped() counts evictions.
  [[nodiscard]] std::vector<Sample> samples() const {
    std::lock_guard lock(mutex_);
    return {samples_.begin(), samples_.end()};
  }

  // Samples evicted from the ring because the cap was reached.
  [[nodiscard]] long long samples_dropped() const {
    std::lock_guard lock(mutex_);
    return samples_dropped_;
  }

  // Times this job was checkpointed and re-enqueued mid-run (0 when the
  // scheduler ran it in one dispatch).
  [[nodiscard]] long long preemptions() const {
    std::lock_guard lock(mutex_);
    return preemptions_;
  }

  // Steps integrated so far (request().steps once Done).
  [[nodiscard]] long long steps_completed() const {
    std::lock_guard lock(mutex_);
    return steps_completed_;
  }

  // True once terminal if request().deadline_ms was set and the job reached
  // its terminal state after the deadline.
  [[nodiscard]] bool deadline_missed() const {
    std::lock_guard lock(mutex_);
    return deadline_missed_;
  }

  // Pool shard of the most recent dispatch (-1 before the first).
  [[nodiscard]] int shard() const {
    std::lock_guard lock(mutex_);
    return shard_;
  }

  // Final energies — valid once status() == Done.
  [[nodiscard]] double potential_energy() const {
    std::lock_guard lock(mutex_);
    return final_pe_;
  }
  [[nodiscard]] double kinetic_energy() const {
    std::lock_guard lock(mutex_);
    return final_ke_;
  }
  [[nodiscard]] double total_energy() const {
    std::lock_guard lock(mutex_);
    return final_pe_ + final_ke_;
  }

  // Failure / rejection reason ("" otherwise).
  [[nodiscard]] std::string error() const {
    std::lock_guard lock(mutex_);
    return error_;
  }

  // Final scene text when request().return_scene was set ("" otherwise).
  [[nodiscard]] std::string final_scene() const {
    std::lock_guard lock(mutex_);
    return final_scene_;
  }

  // Submit-to-terminal latency and submit-to-start queueing delay, seconds.
  // Valid once terminal (0 for rejected start time).
  [[nodiscard]] double latency_seconds() const {
    std::lock_guard lock(mutex_);
    return latency_seconds_;
  }
  [[nodiscard]] double queue_seconds() const {
    std::lock_guard lock(mutex_);
    return queue_seconds_;
  }

 private:
  friend class BatchScheduler;
  using Clock = std::chrono::steady_clock;

  void mark_submitted() {
    std::lock_guard lock(mutex_);
    submitted_at_ = Clock::now();
    if (request_.deadline_ms > 0.0) {
      deadline_at_ = submitted_at_ +
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(request_.deadline_ms));
    }
  }

  // Cap on retained samples (0 = unbounded); set by the scheduler before the
  // ticket is shared, never changed after.
  void set_sample_cap(std::size_t cap) {
    std::lock_guard lock(mutex_);
    sample_cap_ = cap;
  }

  void mark_running(int shard) {
    std::lock_guard lock(mutex_);
    status_ = JobStatus::Running;
    shard_ = shard;
    // Queue delay is submit-to-*first*-start; continuations re-entering the
    // queue after a preemption don't reset it.
    if (!started_) {
      started_ = true;
      queue_seconds_ = std::chrono::duration<double>(Clock::now() - submitted_at_).count();
    }
  }

  void push_sample(const Sample& s) {
    std::lock_guard lock(mutex_);
    if (sample_cap_ > 0 && samples_.size() >= sample_cap_) {
      samples_.pop_front();
      ++samples_dropped_;
    }
    samples_.push_back(s);
  }

  // Preemption: the job leaves its driver mid-run.  `checkpoint` is the
  // "mws 2" text the continuation dispatch restores from; `steps_ran` is the
  // quantum just completed.  Status returns to Queued — the caller re-enqueues
  // the same ticket.
  void record_preemption(std::string checkpoint, long long steps_ran) {
    std::lock_guard lock(mutex_);
    status_ = JobStatus::Queued;
    checkpoint_text_ = std::move(checkpoint);
    steps_completed_ += steps_ran;
    ++preemptions_;
  }

  // Checkpoint of the most recent preemption ("" before the first).  Only
  // the driver that dequeued the job reads it, so the reference is stable
  // while the dispatch runs.
  [[nodiscard]] const std::string& checkpoint_text() const {
    std::lock_guard lock(mutex_);
    return checkpoint_text_;
  }

  void finish(JobStatus terminal, double pe, double ke, std::string scene,
              std::string error) {
    std::lock_guard lock(mutex_);
    status_ = terminal;
    final_pe_ = pe;
    final_ke_ = ke;
    final_scene_ = std::move(scene);
    error_ = std::move(error);
    if (terminal == JobStatus::Done) steps_completed_ = request_.steps;
    checkpoint_text_.clear();  // terminal tickets drop their checkpoint
    const Clock::time_point now = Clock::now();
    latency_seconds_ = std::chrono::duration<double>(now - submitted_at_).count();
    if (request_.deadline_ms > 0.0 && terminal != JobStatus::Rejected) {
      deadline_missed_ = now > deadline_at_;
    }
    cv_.notify_all();
  }

  JobRequest request_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::Queued;
  std::deque<Sample> samples_;
  std::size_t sample_cap_ = 0;
  long long samples_dropped_ = 0;
  long long preemptions_ = 0;
  long long steps_completed_ = 0;
  int shard_ = -1;
  bool started_ = false;
  bool deadline_missed_ = false;
  std::string checkpoint_text_;
  double final_pe_ = 0.0;
  double final_ke_ = 0.0;
  std::string final_scene_;
  std::string error_;
  Clock::time_point submitted_at_ = Clock::now();
  // Absolute deadline; written once in mark_submitted() (before the ticket
  // is shared) and immutable after — the scheduler's EDF pick reads it
  // without taking the ticket lock.
  Clock::time_point deadline_at_ = Clock::time_point::max();
  double latency_seconds_ = 0.0;
  double queue_seconds_ = 0.0;
};

}  // namespace mwx::serve
