// BatchScheduler — the multi-tenant job server over the re-entrant engine.
//
// Architecture (the MPJ-Express daemon shape over the paper's executor):
//
//   clients ── submit(JobRequest) ──► per-tenant FIFO queues ──┐
//                                                              │ fair-share
//   driver threads (max_drivers) ◄── pick_tenant() ◄───────────┘ pick
//        │ run one job end to end:
//        │   SceneCache::load (content-hash dedup)
//        │   Engine(copy of cached system, job's config)
//        │   engine.run_native(shard pool, slice) per sample interval
//        ▼
//   1..n_pools FixedThreadPools (shards) — shared by every concurrent job;
//   per-phase completion rides JobHandles, so tenants cannot starve or
//   corrupt each other (the re-entrancy refactor this layer required).
//
// Fairness is start-time fair queueing over a virtual clock: each tenant
// accumulates virtual time  cost / weight  per dispatched job (cost ∝ steps
// × scene bytes, a proxy for steps × atoms), and the driver always serves
// the backlogged tenant with the smallest virtual time — a weight-2 tenant
// receives ~2× the work of a weight-1 tenant under contention, and an idle
// tenant re-enters at the current clock (no hoarded credit).
//
// Admission control is per-tenant and global queue caps: a submission over
// either cap is returned as a Rejected ticket immediately (closed-loop
// clients back off and retry), so a misbehaving tenant cannot grow the
// queues without bound or crowd out others' admission.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/job.hpp"
#include "serve/scene_cache.hpp"

namespace mwx::serve {

struct TenantQuota {
  double weight = 1.0;   // fair-share weight (2.0 = twice the service rate)
  int max_queued = 64;   // admission cap on this tenant's queued jobs
};

struct SchedulerConfig {
  // Worker-pool shards.  Jobs are placed on the shard with the fewest
  // running jobs at dispatch time.
  int n_pools = 1;
  int threads_per_pool = 4;
  parallel::QueueMode queue_mode = parallel::QueueMode::WorkStealing;
  // Concurrently running jobs (driver threads).  Each running job occupies
  // one driver for its full duration; queued jobs wait.
  int max_drivers = 4;
  // Global admission cap across all tenants' queues.
  int max_queued_total = 256;
  TenantQuota default_quota;
  std::size_t scene_cache_entries = 64;
  // When true the drivers idle until start() — lets tests (and batch
  // clients) enqueue a full workload and observe a deterministic fair-share
  // dispatch order.
  bool start_paused = false;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerConfig config = {});

  // Drains: completes every accepted job, then joins drivers and pools.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Admission + enqueue.  Always returns a ticket; check status() —
  // Rejected tickets (over quota, invalid request, stopping scheduler)
  // never run and carry the reason in error().
  std::shared_ptr<JobTicket> submit(JobRequest request);

  // Sets a tenant's fair-share weight and admission cap (takes effect for
  // subsequent dispatch/admission decisions).
  void set_quota(const std::string& tenant, TenantQuota quota);

  // Releases the drivers of a start_paused scheduler (no-op otherwise).
  void start();

  // Blocks until every job accepted so far has reached a terminal state.
  void drain();

  // Stops accepting (new submissions are Rejected), completes every
  // already-accepted job, joins drivers.  Idempotent; called by ~.
  void stop();

  struct Stats {
    long long accepted = 0;
    long long rejected = 0;
    long long completed = 0;  // Done
    long long failed = 0;     // Failed
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const SceneCache& scene_cache() const { return cache_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  struct Tenant {
    TenantQuota quota;
    std::deque<std::shared_ptr<JobTicket>> queue;
    double vtime = 0.0;  // virtual time consumed / weight
  };

  void driver_main();
  // Serves the backlogged tenant with minimum virtual time; requires lock.
  std::shared_ptr<JobTicket> pick_job_locked(int* shard_out);
  void run_job(JobTicket& job, int shard);
  [[nodiscard]] static double job_cost(const JobRequest& request);

  SchedulerConfig config_;
  SceneCache cache_;
  std::vector<std::unique_ptr<parallel::FixedThreadPool>> pools_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // drivers wait here for work/stop
  std::condition_variable idle_cv_;  // drain()/stop() wait here
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic vtime ties
  std::vector<int> shard_running_;
  int queued_total_ = 0;
  int running_ = 0;
  double vclock_ = 0.0;  // vtime of the most recent dispatch
  bool paused_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> drivers_;
};

}  // namespace mwx::serve
