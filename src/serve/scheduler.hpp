// BatchScheduler — the multi-tenant job server over the re-entrant engine.
//
// Architecture (the MPJ-Express daemon shape over the paper's executor):
//
//   clients ── submit(JobRequest) ──► per-tenant FIFO queues ──┐
//                                                              │ fair-share /
//   driver threads (max_drivers) ◄── pick_job() ◄──────────────┘ EDF pick
//        │ run one job for one *quantum* (preempt_slice_steps, or to
//        │ completion when preemption is off):
//        │   SceneCache::load (content-hash dedup) or checkpoint restore
//        │   Engine(copy of cached system / checkpoint, job's config)
//        │   engine.run_native(shard pool, slice) per sample interval
//        │   quantum exhausted with steps left → checkpoint_text(engine),
//        │   record_preemption, re-enqueue the same ticket
//        ▼
//   1..n_pools FixedThreadPools (shards) — shared by every concurrent job;
//   per-phase completion rides JobHandles, so tenants cannot starve or
//   corrupt each other (the re-entrancy refactor this layer required).
//
// Fairness is start-time fair queueing over a virtual clock: each tenant
// accumulates virtual time  cost / weight  per dispatched *quantum* (cost ∝
// quantum steps × scene bytes, a proxy for steps × atoms), and the driver
// serves the backlogged tenant with the smallest virtual time — a weight-2
// tenant receives ~2× the work of a weight-1 tenant under contention, and an
// idle tenant re-enters at the current clock (no hoarded credit).  Charging
// per quantum (not per job) is what makes preemption fair: an oversized job
// pays for exactly the slice it ran before yielding the driver.
//
// SchedMode::Deadline keeps the same queues but picks
// earliest-deadline-first among jobs that carry a deadline_ms, falling back
// to the fair-share pick when no queued job has one — deadline tenants get
// latency SLOs, batch tenants still share the residual capacity fairly.
//
// Preemption correctness: a preempted job's continuation restores from
// "mws 2" checkpoint text (positions/velocities/accelerations + the
// neighbor list's reference snapshot; see Engine::restore_continuation), so
// its final energies are bit-identical to an uninterrupted run —
// bench/serve_traffic asserts this per job.  During stop() preemption is
// suppressed (the running quantum extends to completion): shutdown owes
// every accepted job a terminal state and gains nothing from more requeues.
//
// Admission control is per-tenant and global queue caps: a submission over
// either cap is returned as a Rejected ticket immediately (closed-loop
// clients back off and retry), so a misbehaving tenant cannot grow the
// queues without bound or crowd out others' admission.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/job.hpp"
#include "serve/scene_cache.hpp"

namespace mwx::serve {

struct TenantQuota {
  double weight = 1.0;   // fair-share weight (2.0 = twice the service rate)
  int max_queued = 64;   // admission cap on this tenant's queued jobs
};

// Scheduling discipline for picking the next job to dispatch.
enum class SchedMode {
  FairShare,  // start-time fair queueing over tenant virtual time
  Deadline,   // EDF over deadline_ms jobs, fair-share among the rest
};

struct SchedulerConfig {
  // Worker-pool shards.  Jobs are placed on the shard with the least
  // outstanding dispatched cost (quantum steps × scene bytes) — running-job
  // *count* would let one shard collect all the oversized jobs.
  int n_pools = 1;
  int threads_per_pool = 4;
  parallel::QueueMode queue_mode = parallel::QueueMode::WorkStealing;
  // Concurrently running jobs (driver threads).  Each dispatch occupies one
  // driver for one quantum; queued jobs wait.
  int max_drivers = 4;
  // Global admission cap across all tenants' queues.
  int max_queued_total = 256;
  TenantQuota default_quota;
  std::size_t scene_cache_entries = 64;
  // Preemption quantum: a dispatched job runs at most this many steps, then
  // is checkpointed, re-enqueued as a continuation on the same ticket, and
  // re-charged from its tenant's vtime — so a 100k-step job cannot hold a
  // driver slot hostage while 50-step jobs queue behind it.  0 = off (every
  // dispatch runs to completion, the pre-preemption behavior).
  int preempt_slice_steps = 0;
  // Scheduling discipline (see SchedMode).
  SchedMode mode = SchedMode::FairShare;
  // Per-ticket bound on retained samples: the newest max_samples_per_job
  // samples are kept, older ones are dropped and counted on the ticket
  // (JobTicket::samples_dropped).  A million-step job with
  // sample_interval=1 must not OOM the scheduler process.  0 = unbounded.
  std::size_t max_samples_per_job = 4096;
  // When true the drivers idle until start() — lets tests (and batch
  // clients) enqueue a full workload and observe a deterministic dispatch
  // order.  drain() and stop() release paused drivers themselves: both owe
  // the caller completion of every accepted job, which paused drivers would
  // never deliver (the pre-fix drain() deadlocked here).
  bool start_paused = false;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerConfig config = {});

  // Drains: completes every accepted job, then joins drivers and pools.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Admission + enqueue.  Always returns a ticket; check status() —
  // Rejected tickets (over quota, invalid request, stopping scheduler)
  // never run and carry the reason in error().
  std::shared_ptr<JobTicket> submit(JobRequest request);

  // Sets a tenant's fair-share weight and admission cap (takes effect for
  // subsequent dispatch/admission decisions).
  void set_quota(const std::string& tenant, TenantQuota quota);

  // Releases the drivers of a start_paused scheduler (no-op otherwise).
  void start();

  // Blocks until every job accepted so far has reached a terminal state.
  // On a paused scheduler this releases the drivers first (wake-and-run):
  // waiting for paused drivers to drain a non-empty queue would deadlock.
  void drain();

  // Stops accepting (new submissions are Rejected), completes every
  // already-accepted job, joins drivers.  Idempotent and safe to call
  // concurrently (each caller returns only once the scheduler is down);
  // called by ~.
  void stop();

  struct Stats {
    long long accepted = 0;
    long long rejected = 0;
    long long completed = 0;    // Done
    long long failed = 0;       // Failed
    long long preemptions = 0;  // checkpoint + re-enqueue events
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const SceneCache& scene_cache() const { return cache_; }
  [[nodiscard]] SceneCache& scene_cache() { return cache_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

  // Outstanding dispatched cost per shard (test observability).
  [[nodiscard]] std::vector<double> shard_costs() const;

 private:
  struct Tenant {
    TenantQuota quota;
    std::deque<std::shared_ptr<JobTicket>> queue;
    double vtime = 0.0;  // virtual time consumed / weight
  };

  // One driver dispatch: the picked job, its shard, the step quantum it may
  // run, and the cost charged to the shard (subtracted back on completion).
  struct Dispatch {
    std::shared_ptr<JobTicket> job;
    int shard = 0;
    int quantum = 0;
    double cost = 0.0;
  };

  void driver_main();
  // Picks per config_.mode and charges tenant vtime + shard cost; requires
  // lock.  Returns false when no job is queued.
  bool pick_job_locked(Dispatch* out);
  // Runs `job` for up to `quantum` steps on `shard`.  Returns true if the
  // job was preempted (checkpointed, status back to Queued) — the caller
  // re-enqueues it; false if it reached a terminal state.
  bool run_job(JobTicket& job, int shard, int quantum);
  [[nodiscard]] static double slice_cost(const JobRequest& request, int quantum);

  SchedulerConfig config_;
  SceneCache cache_;
  std::vector<std::unique_ptr<parallel::FixedThreadPool>> pools_;

  mutable std::mutex mutex_;
  std::mutex stop_mutex_;            // serializes concurrent stop() teardowns
  std::condition_variable cv_;       // drivers wait here for work/stop
  std::condition_variable idle_cv_;  // drain()/stop() wait here
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic vtime ties
  std::vector<double> shard_cost_;   // outstanding dispatched cost per shard
  int queued_total_ = 0;
  int running_ = 0;
  double vclock_ = 0.0;  // vtime of the most recent dispatch
  bool paused_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> drivers_;
};

}  // namespace mwx::serve
