#include "serve/scene_cache.hpp"

#include <sstream>
#include <utility>

#include "md/engine.hpp"
#include "md/scene_io.hpp"
#include "parallel/thread_pool.hpp"

namespace mwx::serve {

namespace {

int resolve_chunks(parallel::FixedThreadPool* pool, int n_chunks) {
  if (pool == nullptr) return 1;
  return n_chunks > 0 ? n_chunks : pool->n_threads();
}

}  // namespace

std::string scene_text(const md::MolecularSystem& sys) {
  return scene_text(sys, nullptr, 1);
}

std::string scene_text(const md::MolecularSystem& sys, parallel::FixedThreadPool* pool,
                       int n_chunks) {
  std::ostringstream os;
  md::save_scene(os, sys, pool, resolve_chunks(pool, n_chunks));
  return os.str();
}

std::string checkpoint_text(const md::Engine& engine) {
  return checkpoint_text(engine, nullptr, 1);
}

std::string checkpoint_text(const md::Engine& engine, parallel::FixedThreadPool* pool,
                            int n_chunks) {
  std::ostringstream os;
  md::save_checkpoint_scene(os, engine.system(),
                            engine.neighbor_list().reference_positions(), pool,
                            resolve_chunks(pool, n_chunks));
  return os.str();
}

std::uint64_t SceneCache::content_hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::size_t SceneCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void SceneCache::set_parse_hook(std::function<void()> hook) {
  std::lock_guard lock(mutex_);
  parse_hook_ = std::move(hook);
}

std::shared_ptr<const md::MolecularSystem> SceneCache::load(const std::string& text) {
  const std::uint64_t key = content_hash(text);
  std::function<void()> hook;
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.text == text) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.system;
    }
    hook = parse_hook_;
  }

  // Probable miss (or collision): parse outside the lock so a slow parse of
  // one scene never serializes hits on others.  The hit/miss verdict waits
  // for the re-lock — a concurrent loader may insert this exact content
  // while we parse, and that outcome is a hit (the cache served the request;
  // this thread's parse was wasted work, not a cache miss).
  if (hook) hook();
  std::istringstream is(text);
  auto system = std::make_shared<const md::MolecularSystem>(md::load_scene(is));

  std::lock_guard lock(mutex_);
  if (max_entries_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return system;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.text == text) {  // racer beat us: the cache resolved it
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.system;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return system;  // genuine collision: serve uncached
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() >= max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{text, system, lru_.begin()});
  return system;
}

}  // namespace mwx::serve
