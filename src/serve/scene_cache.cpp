#include "serve/scene_cache.hpp"

#include <sstream>
#include <utility>

#include "md/scene_io.hpp"

namespace mwx::serve {

std::string scene_text(const md::MolecularSystem& sys) {
  std::ostringstream os;
  md::save_scene(os, sys);
  return os.str();
}

std::uint64_t SceneCache::content_hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::size_t SceneCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::shared_ptr<const md::MolecularSystem> SceneCache::load(const std::string& text) {
  const std::uint64_t key = content_hash(text);
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.text == text) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.stamp = ++clock_;
      return it->second.system;
    }
  }

  // Miss (or collision): parse outside the lock so a slow parse of one scene
  // never serializes hits on others.
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::istringstream is(text);
  auto system = std::make_shared<const md::MolecularSystem>(md::load_scene(is));

  std::lock_guard lock(mutex_);
  if (max_entries_ == 0) return system;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.text == text) return it->second.system;  // racer beat us
    return system;  // genuine collision: serve uncached
  }
  if (entries_.size() >= max_entries_) {
    auto oldest = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second.stamp < oldest->second.stamp) oldest = e;
    }
    entries_.erase(oldest);
  }
  entries_.emplace(key, Entry{text, system, ++clock_});
  return system;
}

}  // namespace mwx::serve
