#include "topo/machine_spec.hpp"

namespace mwx::topo {

namespace {
constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;
constexpr std::int64_t kGiB = 1024 * kMiB;
}  // namespace

MachineSpec core_i7_920() {
  MachineSpec m;
  m.name = "core-i7-920";
  m.processor = "Intel Core i7 920";
  m.packages = 1;
  m.cores_per_package = 4;
  m.smt_per_core = 2;
  m.ghz = 2.66;
  m.caches = {
      {.level = 1, .size_bytes = 32 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 2, .hit_latency_cycles = 4.0},
      {.level = 2, .size_bytes = 256 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 2, .hit_latency_cycles = 11.0},
      {.level = 3, .size_bytes = 8 * kMiB, .line_bytes = 64, .associativity = 16,
       .pus_per_instance = 8, .hit_latency_cycles = 38.0},
  };
  m.memory = {.total_bytes = 6 * kGiB, .dram_latency_cycles = 190.0,
              // Triple-channel DDR3-1066: ~25.6 GB/s peak, ~14 GB/s sustained
              // for irregular traffic at 2.66 GHz ≈ 5.3 B/cycle.
              .bytes_per_cycle_per_controller = 5.3,
              .random_line_occupancy_cycles = 52.0};
  return m;
}

MachineSpec xeon_e5450_2s() {
  MachineSpec m;
  m.name = "xeon-e5450-2s";
  m.processor = "Intel Xeon E5450";
  m.packages = 2;
  m.cores_per_package = 4;
  m.smt_per_core = 1;
  m.ghz = 3.0;
  // Table II reports a 6 MB last-level cache shared by each core pair (four
  // instances across the machine) in addition to 32 kB L1 / 256 kB L2.
  m.caches = {
      {.level = 1, .size_bytes = 32 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 1, .hit_latency_cycles = 3.0},
      {.level = 2, .size_bytes = 256 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 1, .hit_latency_cycles = 12.0},
      {.level = 3, .size_bytes = 6 * kMiB, .line_bytes = 64, .associativity = 24,
       .pus_per_instance = 2, .hit_latency_cycles = 40.0},
  };
  m.memory = {.total_bytes = 16 * kGiB, .dram_latency_cycles = 230.0,
              // FSB-attached FB-DIMM: one shared north-bridge memory
              // controller serves both sockets (home_package 0); the remote
              // socket pays only a small FSB hop.
              .bytes_per_cycle_per_controller = 3.2,
              .random_line_occupancy_cycles = 62.0,
              .home_package = 0,
              .remote_latency_factor = 1.1};
  return m;
}

MachineSpec xeon_x7560_4s() {
  MachineSpec m;
  m.name = "xeon-x7560-4s";
  m.processor = "Intel Xeon X7560";
  m.packages = 4;
  m.cores_per_package = 8;
  m.smt_per_core = 2;
  m.ghz = 2.26;
  m.caches = {
      {.level = 1, .size_bytes = 32 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 2, .hit_latency_cycles = 4.0},
      {.level = 2, .size_bytes = 256 * kKiB, .line_bytes = 64, .associativity = 8,
       .pus_per_instance = 2, .hit_latency_cycles = 11.0},
      {.level = 3, .size_bytes = 24 * kMiB, .line_bytes = 64, .associativity = 24,
       .pus_per_instance = 16, .hit_latency_cycles = 45.0},
  };
  m.memory = {.total_bytes = 192 * kGiB, .dram_latency_cycles = 260.0,
              .bytes_per_cycle_per_controller = 6.0,
              .random_line_occupancy_cycles = 42.0,
              // The JVM allocates its heap on the node it starts on; all
              // sockets then fetch through node 0's controller, remote ones
              // over the QPI hop.
              .home_package = 0,
              .remote_latency_factor = 1.7};
  return m;
}

std::vector<MachineSpec> table2_machines() {
  return {core_i7_920(), xeon_e5450_2s(), xeon_x7560_4s()};
}

}  // namespace mwx::topo
