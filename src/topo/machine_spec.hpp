// Declarative description of a machine: packages, cores, SMT, cache
// hierarchy, and memory system.  This is the shared vocabulary between the
// topology tree (hwloc substitute), Table II reporting, and the discrete-
// event machine simulator, which instantiates its cache/memory models from a
// MachineSpec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mwx::topo {

struct CacheLevelSpec {
  int level = 1;               // 1, 2, 3
  std::int64_t size_bytes = 0;
  int line_bytes = 64;
  int associativity = 8;
  int pus_per_instance = 1;    // sharing domain width in logical PUs
  double hit_latency_cycles = 4.0;
};

struct MemorySpec {
  std::int64_t total_bytes = 0;
  double dram_latency_cycles = 200.0;
  // Sustained bandwidth per memory controller (one per package), in bytes
  // per core-cycle.  E.g. ~12.8 GB/s at 2.66 GHz ≈ 4.8 B/cycle.
  double bytes_per_cycle_per_controller = 4.8;
  // Controller occupancy per line fetched with poor locality (row misses,
  // dependent pointer chases): random-access line throughput is far below
  // the streaming figure.  The effective occupancy of a transfer is
  // max(line_bytes / bytes_per_cycle, this).
  double random_line_occupancy_cycles = 40.0;
  // NUMA home node of the application's heap.  -1 models node-interleaved /
  // local memory (each package's controller serves its own threads).  A
  // package index means every DRAM transfer is served by that package's
  // controller, and threads on other packages additionally pay
  // remote_latency_factor on the DRAM latency — the single-home-heap
  // behaviour of a JVM started on one node.
  int home_package = -1;
  double remote_latency_factor = 1.7;
};

struct MachineSpec {
  std::string name;
  std::string processor;       // marketing name, for Table II
  int packages = 1;
  int cores_per_package = 1;
  int smt_per_core = 1;
  double ghz = 2.66;
  std::vector<CacheLevelSpec> caches;  // ordered L1..Ln
  MemorySpec memory;

  [[nodiscard]] int n_cores() const { return packages * cores_per_package; }
  [[nodiscard]] int n_pus() const { return n_cores() * smt_per_core; }

  // Logical PU numbering convention: PU id = core_id * smt_per_core + smt,
  // core_id = package * cores_per_package + core-in-package.  (This is the
  // "topology-major" order; the OS-visible interleaved numbering some
  // machines use is a presentation detail we do not model.)
  [[nodiscard]] int pu_to_core(int pu) const { return pu / smt_per_core; }
  [[nodiscard]] int pu_to_package(int pu) const { return pu_to_core(pu) / cores_per_package; }
  [[nodiscard]] int core_to_package(int core) const { return core / cores_per_package; }

  // Index of the cache instance of `level` that services `pu`, or -1 when the
  // machine has no such level.
  [[nodiscard]] int cache_instance(int level, int pu) const {
    for (const auto& c : caches) {
      if (c.level == level) return pu / c.pus_per_instance;
    }
    return -1;
  }

  [[nodiscard]] const CacheLevelSpec* find_level(int level) const {
    for (const auto& c : caches) {
      if (c.level == level) return &c;
    }
    return nullptr;
  }
};

// The three reference machines of Table II.
MachineSpec core_i7_920();      // 1 socket x 4 cores x 2 SMT, 8 MB shared L3
MachineSpec xeon_e5450_2s();    // 2 sockets x 4 cores, 6 MB LLC per core pair
MachineSpec xeon_x7560_4s();    // 4 sockets x 8 cores x 2 SMT, 24 MB L3/socket

// All Table II presets in paper order.
std::vector<MachineSpec> table2_machines();

}  // namespace mwx::topo
