// Hardware topology tree — the hwloc substitute called for in Section V-C.
//
// Presents the machine as a general-purpose tree of resources
// (Machine → Package → Core → PU, with Cache nodes attached at their sharing
// level) and answers the queries the paper identified as missing from 2010
// tooling: which PUs share a last-level cache, which PUs are SMT siblings,
// and how a CpuSet maps onto physical resources.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"

namespace mwx::topo {

enum class NodeType { Machine, Package, Core, Pu, Cache };

const char* to_string(NodeType t);

struct Node {
  NodeType type = NodeType::Machine;
  int index = 0;          // index among siblings of the same type
  int os_index = -1;      // PU: logical processor id; Cache: instance id
  int cache_level = 0;    // Cache nodes only
  std::int64_t cache_size_bytes = 0;
  CpuSet cpuset;          // PUs contained in / serviced by this node
  std::vector<std::unique_ptr<Node>> children;

  [[nodiscard]] std::string label() const;
};

class Topology {
 public:
  // Builds the canonical tree for a declarative machine description.
  explicit Topology(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] const Node& root() const { return *root_; }

  [[nodiscard]] int n_pus() const { return spec_.n_pus(); }
  [[nodiscard]] int n_cores() const { return spec_.n_cores(); }

  // PUs sharing the given PU's cache at `level` (includes `pu` itself).
  [[nodiscard]] CpuSet pus_sharing_cache(int level, int pu) const;

  // SMT siblings of `pu` (includes `pu`).
  [[nodiscard]] CpuSet smt_siblings(int pu) const;

  // One PU per physical core, lowest SMT thread first: the mask a pinning
  // policy uses to avoid placing two threads on one core inadvertently
  // (the failure mode called out at the end of Section V-C).
  [[nodiscard]] std::vector<int> one_pu_per_core() const;

  // PUs of the given package, in PU order.
  [[nodiscard]] std::vector<int> pus_of_package(int package) const;

  // Distance classes between two PUs: 0 same PU, 1 same core (SMT),
  // 2 same LLC, 3 same package, 4 cross package.
  [[nodiscard]] int distance_class(int pu_a, int pu_b) const;

  // ASCII rendering of the resource tree (one node per line, indented).
  [[nodiscard]] std::string render() const;

 private:
  MachineSpec spec_;
  std::unique_ptr<Node> root_;
};

// Best-effort discovery of the host machine from /sys (falls back to a
// single-core description when sysfs is unavailable).  The discovered spec
// uses measured cache sizes but default latency/bandwidth figures.
MachineSpec discover_host();

}  // namespace mwx::topo
