#include "topo/topology.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/require.hpp"

namespace mwx::topo {

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::Machine: return "Machine";
    case NodeType::Package: return "Package";
    case NodeType::Core: return "Core";
    case NodeType::Pu: return "PU";
    case NodeType::Cache: return "Cache";
  }
  return "?";
}

std::string Node::label() const {
  std::ostringstream os;
  if (type == NodeType::Cache) {
    os << 'L' << cache_level;
    const double mib = static_cast<double>(cache_size_bytes) / (1024.0 * 1024.0);
    if (mib >= 1.0) {
      os << " (" << mib << " MiB)";
    } else {
      os << " (" << cache_size_bytes / 1024 << " KiB)";
    }
  } else {
    os << to_string(type) << ' ' << (type == NodeType::Pu ? os_index : index);
  }
  return os.str();
}

namespace {

// Attaches cache nodes below `parent` for every level whose sharing domain
// is exactly the PU range the parent covers, then recurses.
void attach_structure(Node& parent, const MachineSpec& spec, int first_pu, int n_pus_here) {
  // Insert any cache level whose instance width equals this node's width.
  // When a package and its cores have the same width (single-core package),
  // the cache belongs to the deeper node — the core — so skip it here.
  const int core_width = spec.smt_per_core;
  for (const auto& c : spec.caches) {
    if (parent.type == NodeType::Package && c.pus_per_instance <= core_width) continue;
    if (c.pus_per_instance == n_pus_here && parent.type != NodeType::Machine) {
      // Represent the cache as a child annotation node.
      auto cache = std::make_unique<Node>();
      cache->type = NodeType::Cache;
      cache->cache_level = c.level;
      cache->cache_size_bytes = c.size_bytes;
      cache->os_index = first_pu / c.pus_per_instance;
      cache->cpuset = CpuSet::range(first_pu, first_pu + n_pus_here);
      parent.children.push_back(std::move(cache));
    }
  }

  if (parent.type == NodeType::Machine) {
    const int pus_per_pkg = spec.cores_per_package * spec.smt_per_core;
    for (int p = 0; p < spec.packages; ++p) {
      auto pkg = std::make_unique<Node>();
      pkg->type = NodeType::Package;
      pkg->index = p;
      pkg->cpuset = CpuSet::range(p * pus_per_pkg, (p + 1) * pus_per_pkg);
      attach_structure(*pkg, spec, p * pus_per_pkg, pus_per_pkg);
      parent.children.push_back(std::move(pkg));
    }
  } else if (parent.type == NodeType::Package) {
    const int pus_per_core = spec.smt_per_core;
    const int first_core = first_pu / pus_per_core;
    for (int c = 0; c < spec.cores_per_package; ++c) {
      auto core = std::make_unique<Node>();
      core->type = NodeType::Core;
      core->index = first_core + c;
      const int pu0 = first_pu + c * pus_per_core;
      core->cpuset = CpuSet::range(pu0, pu0 + pus_per_core);
      attach_structure(*core, spec, pu0, pus_per_core);
      parent.children.push_back(std::move(core));
    }
  } else if (parent.type == NodeType::Core) {
    for (int s = 0; s < spec.smt_per_core; ++s) {
      auto pu = std::make_unique<Node>();
      pu->type = NodeType::Pu;
      pu->index = s;
      pu->os_index = first_pu + s;
      pu->cpuset = CpuSet::of({first_pu + s});
      parent.children.push_back(std::move(pu));
    }
  }
}

void render_node(const Node& n, int depth, std::ostringstream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << n.label() << '\n';
  for (const auto& c : n.children) render_node(*c, depth + 1, os);
}

}  // namespace

Topology::Topology(MachineSpec spec) : spec_(std::move(spec)) {
  require(spec_.packages > 0 && spec_.cores_per_package > 0 && spec_.smt_per_core > 0,
          "machine must have at least one PU");
  require(spec_.n_pus() <= CpuSet::kMaxPus, "machine exceeds CpuSet capacity");
  root_ = std::make_unique<Node>();
  root_->type = NodeType::Machine;
  root_->cpuset = CpuSet::range(0, spec_.n_pus());
  attach_structure(*root_, spec_, 0, spec_.n_pus());
}

CpuSet Topology::pus_sharing_cache(int level, int pu) const {
  require(pu >= 0 && pu < n_pus(), "pu out of range");
  const CacheLevelSpec* c = spec_.find_level(level);
  if (c == nullptr) return CpuSet::of({pu});
  const int inst = pu / c->pus_per_instance;
  return CpuSet::range(inst * c->pus_per_instance, (inst + 1) * c->pus_per_instance);
}

CpuSet Topology::smt_siblings(int pu) const {
  require(pu >= 0 && pu < n_pus(), "pu out of range");
  const int core = spec_.pu_to_core(pu);
  return CpuSet::range(core * spec_.smt_per_core, (core + 1) * spec_.smt_per_core);
}

std::vector<int> Topology::one_pu_per_core() const {
  std::vector<int> pus;
  pus.reserve(static_cast<std::size_t>(n_cores()));
  for (int c = 0; c < n_cores(); ++c) pus.push_back(c * spec_.smt_per_core);
  return pus;
}

std::vector<int> Topology::pus_of_package(int package) const {
  require(package >= 0 && package < spec_.packages, "package out of range");
  const int per_pkg = spec_.cores_per_package * spec_.smt_per_core;
  std::vector<int> pus;
  pus.reserve(static_cast<std::size_t>(per_pkg));
  for (int i = 0; i < per_pkg; ++i) pus.push_back(package * per_pkg + i);
  return pus;
}

int Topology::distance_class(int pu_a, int pu_b) const {
  require(pu_a >= 0 && pu_a < n_pus() && pu_b >= 0 && pu_b < n_pus(), "pu out of range");
  if (pu_a == pu_b) return 0;
  if (spec_.pu_to_core(pu_a) == spec_.pu_to_core(pu_b)) return 1;
  const CacheLevelSpec* llc = spec_.find_level(3);
  if (llc != nullptr && pu_a / llc->pus_per_instance == pu_b / llc->pus_per_instance) return 2;
  if (spec_.pu_to_package(pu_a) == spec_.pu_to_package(pu_b)) return 3;
  return 4;
}

std::string Topology::render() const {
  std::ostringstream os;
  os << spec_.processor << " (" << spec_.packages << " x " << spec_.cores_per_package
     << " cores x " << spec_.smt_per_core << " SMT @ " << spec_.ghz << " GHz)\n";
  render_node(*root_, 0, os);
  return os.str();
}

namespace {

// Reads a small integer file like /sys/devices/system/cpu/cpu0/topology/...
// Returns fallback when missing/unparsable.
long read_long(const std::filesystem::path& p, long fallback) {
  std::ifstream in(p);
  long v = fallback;
  if (in && (in >> v)) return v;
  return fallback;
}

// Parses cache size strings of the form "32K" / "8192K" / "2M".
std::int64_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::int64_t v = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    ++i;
  }
  if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) v *= 1024;
  if (i < s.size() && (s[i] == 'M' || s[i] == 'm')) v *= 1024 * 1024;
  return v;
}

}  // namespace

MachineSpec discover_host() {
  MachineSpec m;
  m.name = "host";
  m.processor = "host processor";
  const unsigned hc = std::thread::hardware_concurrency();
  const int n_pus = hc > 0 ? static_cast<int>(hc) : 1;

  namespace fs = std::filesystem;
  const fs::path cpu0 = "/sys/devices/system/cpu/cpu0";

  int smt = 1;
  int max_package = 0;
  if (fs::exists(cpu0 / "topology")) {
    // Count SMT siblings of cpu0 and the highest package id across all PUs.
    int core0 = static_cast<int>(read_long(cpu0 / "topology/core_id", 0));
    int siblings = 0;
    for (int pu = 0; pu < n_pus; ++pu) {
      const fs::path base = fs::path("/sys/devices/system/cpu") / ("cpu" + std::to_string(pu));
      if (!fs::exists(base / "topology")) continue;
      const int pkg = static_cast<int>(read_long(base / "topology/physical_package_id", 0));
      max_package = std::max(max_package, pkg);
      if (pkg == 0 && read_long(base / "topology/core_id", -1) == core0) ++siblings;
    }
    smt = std::max(1, siblings);
  }
  m.packages = max_package + 1;
  m.smt_per_core = smt;
  m.cores_per_package = std::max(1, n_pus / (m.packages * m.smt_per_core));

  // Cache hierarchy from cpu0's index directories.
  for (int idx = 0;; ++idx) {
    const fs::path c = cpu0 / "cache" / ("index" + std::to_string(idx));
    if (!fs::exists(c)) break;
    std::ifstream type_in(c / "type");
    std::string type;
    type_in >> type;
    if (type == "Instruction") continue;
    CacheLevelSpec lvl;
    lvl.level = static_cast<int>(read_long(c / "level", idx + 1));
    std::ifstream size_in(c / "size");
    std::string size_s;
    size_in >> size_s;
    lvl.size_bytes = parse_size(size_s);
    lvl.line_bytes = static_cast<int>(read_long(c / "coherency_line_size", 64));
    lvl.associativity = static_cast<int>(read_long(c / "ways_of_associativity", 8));
    // Width of the sharing domain: count bits of shared_cpu_list span; we
    // approximate with 1 PU (private) for L1/L2 and all PUs for L3.
    lvl.pus_per_instance = lvl.level >= 3 ? n_pus : m.smt_per_core;
    lvl.hit_latency_cycles = lvl.level == 1 ? 4.0 : (lvl.level == 2 ? 12.0 : 40.0);
    m.caches.push_back(lvl);
  }
  if (m.caches.empty()) {
    m.caches = {{.level = 1, .size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8,
                 .pus_per_instance = 1, .hit_latency_cycles = 4.0}};
  }
  m.memory = {.total_bytes = 0, .dram_latency_cycles = 200.0,
              .bytes_per_cycle_per_controller = 5.0};
  return m;
}

}  // namespace mwx::topo
