#include "topo/cpuset.hpp"

#include <sstream>

namespace mwx::topo {

std::string CpuSet::to_string() const {
  std::ostringstream os;
  bool first_range = true;
  int i = first();
  while (i >= 0) {
    int j = i;
    while (test(j + 1)) ++j;
    if (!first_range) os << ',';
    first_range = false;
    if (j == i) {
      os << i;
    } else {
      os << i << '-' << j;
    }
    i = next(j);
  }
  if (first_range) os << "(empty)";
  return os.str();
}

}  // namespace mwx::topo
