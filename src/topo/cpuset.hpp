// A set of logical processors (PUs), the currency of affinity control.
//
// Mirrors the role of Linux cpu_set_t / hwloc bitmaps: affinity masks handed
// to the native pinning layer (mwx::parallel::pin_current_thread) and to the
// simulator's OS-scheduler model are both CpuSets.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/require.hpp"

namespace mwx::topo {

class CpuSet {
 public:
  static constexpr int kMaxPus = 256;

  constexpr CpuSet() = default;

  static CpuSet all(int n_pus) {
    CpuSet s;
    for (int i = 0; i < n_pus; ++i) s.set(i);
    return s;
  }

  static CpuSet of(std::initializer_list<int> pus) {
    CpuSet s;
    for (int p : pus) s.set(p);
    return s;
  }

  static CpuSet range(int first, int last_exclusive) {
    CpuSet s;
    for (int i = first; i < last_exclusive; ++i) s.set(i);
    return s;
  }

  void set(int pu) {
    require(pu >= 0 && pu < kMaxPus, "pu index out of range");
    words_[pu / 64] |= (1ULL << (pu % 64));
  }

  void clear(int pu) {
    require(pu >= 0 && pu < kMaxPus, "pu index out of range");
    words_[pu / 64] &= ~(1ULL << (pu % 64));
  }

  [[nodiscard]] constexpr bool test(int pu) const {
    return pu >= 0 && pu < kMaxPus && (words_[pu / 64] >> (pu % 64)) & 1ULL;
  }

  [[nodiscard]] constexpr bool empty() const {
    for (auto w : words_)
      if (w) return false;
    return true;
  }

  [[nodiscard]] constexpr int count() const {
    int n = 0;
    for (auto w : words_) n += __builtin_popcountll(w);
    return n;
  }

  // Lowest set PU, or -1 if empty.
  [[nodiscard]] constexpr int first() const {
    for (int i = 0; i < kMaxPus / 64; ++i) {
      if (words_[i]) return i * 64 + __builtin_ctzll(words_[i]);
    }
    return -1;
  }

  // Next set PU strictly greater than `pu`, or -1.
  [[nodiscard]] constexpr int next(int pu) const {
    for (int i = pu + 1; i < kMaxPus; ++i) {
      if (test(i)) return i;
    }
    return -1;
  }

  [[nodiscard]] CpuSet operator&(const CpuSet& o) const {
    CpuSet r;
    for (int i = 0; i < kMaxPus / 64; ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }

  [[nodiscard]] CpuSet operator|(const CpuSet& o) const {
    CpuSet r;
    for (int i = 0; i < kMaxPus / 64; ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }

  [[nodiscard]] bool operator==(const CpuSet& o) const {
    for (int i = 0; i < kMaxPus / 64; ++i)
      if (words_[i] != o.words_[i]) return false;
    return true;
  }

  // Human-readable "0-3,8,10" style list.
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t words_[kMaxPus / 64] = {};
};

}  // namespace mwx::topo
