// mwx_cli — the general-purpose driver a downstream user would reach for:
// run any built-in benchmark or a .mws scene file, natively or on a modelled
// machine, with every knob of the study exposed as a flag.
//
//   mwx_cli --workload salt --threads 4 --steps 200
//   mwx_cli --scene my_system.mws --machine x7560 --threads 8 --pin one-socket
//   mwx_cli --workload Al-1000 --layout packed-soa --temporaries in-place
//   mwx_cli --workload nanocar --save-scene nanocar.mws
//
// Flags (defaults in brackets):
//   --workload <nanocar|salt|Al-1000>   built-in benchmark [salt]
//   --scene <path.mws>                  load a scene file instead
//   --save-scene <path.mws>             write the system and exit
//   --steps N [100]      --threads N [1]     --seed N [7]
//   --machine <native|i7|e5450|x7560> [i7]   (native = real threads)
//   --layout <java|reordered|packed-soa> [java]
//   --temporaries <java|in-place> [java]
//   --queue <static|shared> [static]    --chunks N [1]
//   --pin <none|one-per-core|one-socket> [none]   (modelled machines)
//   --xyz <path>                        append an XYZ frame every 10% of the run
#include <fstream>
#include <iostream>

#include "common/args.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/observables.hpp"
#include "md/scene_io.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/machine.hpp"
#include "topo/topology.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  try {
    const Args args(argc, argv);
    const int steps = static_cast<int>(args.get_int("steps", 100));
    const int threads = static_cast<int>(args.get_int("threads", 1));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

    // --- Assemble the system and engine configuration ----------------------
    md::EngineConfig cfg;
    md::MolecularSystem system = [&] {
      if (args.has("scene")) {
        return md::load_scene_file(args.get("scene", ""));
      }
      auto spec = workloads::make_benchmark(args.get("workload", "salt"), seed);
      cfg = spec.engine;
      return std::move(spec.system);
    }();

    if (args.has("save-scene")) {
      md::save_scene_file(args.get("save-scene", ""), system);
      std::cout << "wrote " << args.get("save-scene", "") << " (" << system.n_atoms()
                << " atoms, " << system.n_bonds_total() << " bonds)\n";
      return 0;
    }

    cfg.n_threads = threads;
    cfg.chunks_per_thread = static_cast<int>(args.get_int("chunks", 1));
    cfg.assignment = args.get("queue", "static") == "shared" ? sim::Assignment::SharedQueue
                                                             : sim::Assignment::Static;
    const std::string layout = args.get("layout", "java");
    cfg.heap.layout = layout == "packed-soa"  ? md::Layout::PackedSoA
                      : layout == "reordered" ? md::Layout::ReorderedObjects
                                              : md::Layout::JavaObjects;
    cfg.temporaries = args.get("temporaries", "java") == "in-place"
                          ? md::TemporariesMode::InPlace
                          : md::TemporariesMode::JavaStyle;
    md::Engine engine(std::move(system), cfg);

    std::ofstream xyz;
    if (args.has("xyz")) xyz.open(args.get("xyz", ""));
    const int burst = std::max(1, steps / 10);

    // --- Run ----------------------------------------------------------------
    const std::string machine_name = args.get("machine", "i7");
    Table report({"Metric", "Value"});
    if (machine_name == "native") {
      parallel::FixedThreadPool pool({.n_threads = threads});
      perf::StopWatch watch;
      for (int done = 0; done < steps; done += burst) {
        engine.run_native(pool, std::min(burst, steps - done));
        if (xyz.is_open()) md::write_xyz_frame(xyz, engine.system());
      }
      report.row("backend", "native threads");
      report.row("wall seconds", Table::fixed(watch.elapsed_seconds(), 3));
    } else {
      topo::MachineSpec spec = machine_name == "e5450"   ? topo::xeon_e5450_2s()
                               : machine_name == "x7560" ? topo::xeon_x7560_4s()
                                                         : topo::core_i7_920();
      sim::MachineConfig mc;
      mc.spec = spec;
      mc.n_threads = threads;
      const std::string pin = args.get("pin", "none");
      if (pin == "one-per-core") {
        topo::Topology topo(spec);
        for (int i = 0; i < threads; ++i) {
          mc.pin_masks.push_back(topo::CpuSet::of(
              {topo.one_pu_per_core()[static_cast<std::size_t>(i) %
                                      topo.one_pu_per_core().size()]}));
        }
      } else if (pin == "one-socket") {
        for (int i = 0; i < threads; ++i) {
          mc.pin_masks.push_back(topo::CpuSet::of({(i % spec.cores_per_package) *
                                                   spec.smt_per_core}));
        }
      }
      sim::Machine machine(mc);
      for (int done = 0; done < steps; done += burst) {
        engine.run_simulated(machine, std::min(burst, steps - done));
        if (xyz.is_open()) md::write_xyz_frame(xyz, engine.system());
      }
      report.row("backend", spec.processor + " (simulated)");
      report.row("simulated seconds", Table::fixed(machine.now_seconds(), 4));
      report.row("ms/step", Table::fixed(machine.now_seconds() / steps * 1e3, 3));
      report.row("updates/s", Table::fixed(steps / machine.now_seconds(), 1));
      report.row("L3 miss %",
                 Table::fixed(machine.counters().l3.miss_rate() * 100.0, 1));
      report.row("DRAM MB/step",
                 Table::fixed(machine.counters().dram_bytes(64) / 1e6 / steps, 2));
      report.row("migrations", static_cast<long long>(machine.counters().migrations));
    }

    report.row("atoms", engine.system().n_atoms());
    report.row("steps", steps);
    report.row("threads", threads);
    report.row("neighbor rebuilds", static_cast<long long>(engine.rebuild_count()));
    report.row("temperature (K)", Table::fixed(md::temperature_kelvin(engine.system()), 1));
    report.row("total energy (eV)", Table::fixed(units::to_ev(engine.total_energy()), 3));
    report.print(std::cout, "mwx run report");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mwx_cli: " << e.what() << '\n';
    return 1;
  }
}
