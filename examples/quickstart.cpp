// Quickstart: build a small Lennard-Jones system, run it on native threads,
// and watch conserved quantities.
//
//   $ ./build/examples/quickstart [atoms] [steps]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int n_atoms = argc > 1 ? std::atoi(argv[1]) : 256;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 400;

  // 1. Build a system: an argon gas at liquid-ish density, 120 K.
  md::MolecularSystem system = workloads::make_lj_gas(n_atoms, 0.012, 120.0, /*seed=*/42);

  // 2. Configure the engine: 2 worker threads, 2 fs timestep.
  md::EngineConfig config;
  config.n_threads = 2;
  config.dt_fs = 2.0;
  config.cutoff = 8.5;
  config.skin = 1.0;
  config.temporaries = md::TemporariesMode::InPlace;  // no modelled heap churn
  md::Engine engine(std::move(system), config);

  // 3. Run on a real thread pool, reporting as we go.
  parallel::FixedThreadPool pool({.n_threads = 2});
  Table table({"Step", "KE (eV)", "PE (eV)", "Total (eV)", "T (K)", "Rebuilds"});
  for (int done = 0; done < steps;) {
    const int burst = std::min(steps / 8 > 0 ? steps / 8 : 1, steps - done);
    engine.run_native(pool, burst);
    done += burst;
    table.row(done, Table::fixed(units::to_ev(engine.kinetic_energy()), 3),
              Table::fixed(units::to_ev(engine.potential_energy()), 3),
              Table::fixed(units::to_ev(engine.total_energy()), 3),
              Table::fixed(units::kinetic_to_kelvin(engine.kinetic_energy(),
                                                    engine.system().n_movable()),
                           1),
              static_cast<long long>(engine.rebuild_count()));
  }
  table.print(std::cout, "LJ gas, " + std::to_string(n_atoms) + " atoms, " +
                             std::to_string(steps) + " steps");
  std::cout << "\nTotal energy should stay nearly constant (velocity-Verlet).\n";
  return 0;
}
