// Collision cascade: the Al-1000 scenario up close.  A fast gold atom
// strikes a cold aluminium block; we track its penetration, the heat it
// deposits, and the neighbor-list rebuilds it forces — the workload property
// behind the paper's worst-scaling benchmark.
//
//   $ ./build/examples/collision_cascade [steps]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 400;

  workloads::BenchmarkSpec spec = workloads::make_al1000(/*seed=*/3);
  md::EngineConfig config = spec.engine;
  config.n_threads = 1;
  config.temporaries = md::TemporariesMode::InPlace;

  // Find the projectile (the only fast atom) before we hand the system over.
  int projectile = -1;
  for (int i = 0; i < spec.system.n_atoms(); ++i) {
    if (spec.system.velocities()[static_cast<std::size_t>(i)].norm() > 0.05) projectile = i;
  }
  md::Engine engine(std::move(spec.system), config);

  const double z0 = engine.system().positions()[static_cast<std::size_t>(projectile)].z;
  Table table({"t (fs)", "Projectile z (A)", "Penetration (A)", "Max v (A/fs)", "T block (K)",
               "Rebuilds"});
  long long last_rebuilds = 0;
  for (int done = 0; done < steps;) {
    const int burst = std::min(steps / 10 > 0 ? steps / 10 : 1, steps - done);
    engine.run_inline(burst);
    done += burst;
    const auto& sys = engine.system();
    double vmax = 0.0;
    for (const Vec3& v : sys.velocities()) vmax = std::max(vmax, v.norm());
    const double z = sys.positions()[static_cast<std::size_t>(projectile)].z;
    table.row(static_cast<int>(done * config.dt_fs), Table::fixed(z, 2),
              Table::fixed(z0 - z, 2), Table::fixed(vmax, 4),
              Table::fixed(units::kinetic_to_kelvin(sys.kinetic_energy(), sys.n_movable()), 0),
              static_cast<long long>(engine.rebuild_count()));
    last_rebuilds = engine.rebuild_count();
  }
  table.print(std::cout, "Al-1000 collision cascade");
  std::cout << "\n" << last_rebuilds << " neighbor-list rebuilds in " << steps
            << " steps — the frequent updates that characterize this benchmark "
               "(Section III).\n";
  return 0;
}
