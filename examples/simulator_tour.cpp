// Simulator tour: run one benchmark across the paper's three machines
// (Table II) and thread counts, reading the counters the hardware PMU gave
// the paper's authors — cache misses, DRAM traffic, migrations — from the
// machine model instead.
//
//   $ ./build/examples/simulator_tour [benchmark] [steps]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const std::string benchmark = argc > 1 ? argv[1] : "salt";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 30;

  std::cout << "Benchmark '" << benchmark << "' on the three Table II machines ("
            << steps << " steps each)\n\n";

  Table table({"Machine", "Threads", "ms/step", "Speedup", "L3 miss%", "DRAM MB/step",
               "Migrations"});
  for (const auto& spec : topo::table2_machines()) {
    double t1 = 0.0;
    for (int threads : {1, 4, 8}) {
      if (threads > spec.n_cores()) continue;
      workloads::BenchmarkSpec wl = workloads::make_benchmark(benchmark, 7);
      md::EngineConfig cfg = wl.engine;
      cfg.n_threads = threads;
      md::Engine engine(std::move(wl.system), cfg);

      sim::MachineConfig mc;
      mc.spec = spec;
      mc.n_threads = threads;
      sim::Machine machine(mc);
      engine.run_simulated(machine, steps);

      const double per_step = machine.now_seconds() / steps;
      if (threads == 1) t1 = per_step;
      table.row(spec.processor, threads, Table::fixed(per_step * 1e3, 3),
                Table::fixed(t1 / per_step, 2),
                Table::fixed(machine.counters().l3.miss_rate() * 100.0, 1),
                Table::fixed(machine.counters().dram_bytes(64) / 1e6 / steps, 2),
                static_cast<long long>(machine.counters().migrations));
    }
  }
  table.print(std::cout);
  std::cout << "\n(all numbers from the discrete-event machine model — the stand-in for\n"
               "VTune's hardware counters on hardware we do not have)\n";
  return 0;
}
