// Ionic dynamics: run the salt benchmark natively and, as a bonus, compare
// its engine Coulomb energy against the PME solver on a periodic replica —
// demonstrating the future-work extension alongside the paper's direct sum.
//
//   $ ./build/examples/salt_melt [steps]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/ewald/pme.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 300;

  workloads::BenchmarkSpec spec = workloads::make_salt(/*seed=*/22);
  md::EngineConfig config = spec.engine;
  config.n_threads = 2;
  config.temporaries = md::TemporariesMode::InPlace;
  md::Engine engine(std::move(spec.system), config);
  parallel::FixedThreadPool pool({.n_threads = 2});

  Table table({"t (fs)", "T (K)", "PE (eV)", "Total (eV)"});
  for (int done = 0; done < steps;) {
    const int burst = std::min(steps / 10 > 0 ? steps / 10 : 1, steps - done);
    engine.run_native(pool, burst);
    done += burst;
    const auto& sys = engine.system();
    table.row(static_cast<int>(done * config.dt_fs),
              Table::fixed(units::kinetic_to_kelvin(sys.kinetic_energy(), sys.n_atoms()), 0),
              Table::fixed(units::to_ev(engine.potential_energy()), 2),
              Table::fixed(units::to_ev(engine.total_energy()), 2));
  }
  table.print(std::cout, "salt: 400 Na+ + 400 Cl-, 2 native threads");

  // --- PME demonstration on a periodic NaCl box --------------------------
  std::cout << "\nPME vs direct sum on a periodic 512-ion rock-salt box:\n";
  const double a = 2.82;
  const Vec3 box{8 * a, 8 * a, 8 * a};
  std::vector<Vec3> pos;
  std::vector<double> charges;
  for (int z = 0; z < 8; ++z) {
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        pos.push_back({(x + 0.5) * a, (y + 0.5) * a, (z + 0.5) * a});
        charges.push_back((x + y + z) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
  const auto params = md::ewald::suggest_params(box, static_cast<int>(pos.size()));
  const auto pme = md::ewald::PmeSolver(box, params).compute(pos, charges);
  const double per_pair_ev = units::to_ev(2.0 * pme.energy / static_cast<double>(pos.size()));
  std::cout << "  PME lattice energy per ion pair: " << Table::fixed(per_pair_ev, 4)
            << " eV  (Madelung: -1.747565 * 14.4 / 2.82 = "
            << Table::fixed(-1.747565 * 14.399645 / a, 4) << " eV)\n";
  return 0;
}
