// The nanocar benchmark on real threads, with the per-phase imbalance
// analysis Section IV wished the 2010 tools could do: the engine records an
// exact event log, from which we report per-phase thread busy times.
//
//   $ ./build/examples/nanocar_demo [steps] [threads]
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/event_log.hpp"
#include "perf/monitor.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 200;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 2;

  workloads::BenchmarkSpec spec = workloads::make_nanocar(/*seed=*/11);
  md::EngineConfig config = spec.engine;
  config.n_threads = threads;
  config.temporaries = md::TemporariesMode::InPlace;
  md::Engine engine(std::move(spec.system), config);

  perf::EventLog log(threads);
  perf::JamonMonitor monitor;
  engine.attach_event_log(&log);
  engine.attach_monitor(&monitor);

  parallel::FixedThreadPool pool(
      {.n_threads = threads, .queue_mode = parallel::QueueMode::PerThread});
  engine.run_native(pool, steps);

  std::cout << "nanocar: " << engine.system().n_atoms() << " atoms ("
            << engine.system().n_atoms() - engine.system().n_movable()
            << " immovable platform), " << engine.system().n_bonds_total() << " bonds, "
            << steps << " steps on " << threads << " threads\n\n";

  // Per-phase wall time from the monitor (what JaMON would report).
  Table phases({"Phase", "Calls", "Total s", "Mean us"});
  const std::map<std::string, std::string> phase_names = {
      {"phase.1", "predictor"},      {"phase.2", "neighbor check"},
      {"phase.4", "forces (3+4)"},   {"phase.5", "reduction"},
      {"phase.6", "corrector"},
  };
  for (const auto& snap : monitor.snapshot()) {
    const auto it = phase_names.find(snap.key);
    phases.row(it != phase_names.end() ? it->second : snap.key, snap.hits,
               Table::fixed(snap.total_seconds, 3),
               Table::fixed(snap.mean_seconds() * 1e6, 1));
  }
  phases.print(std::cout, "Per-phase timing (JaMON-style monitor)");

  // Exact per-thread busy time and imbalance per phase (from the event log —
  // the view the paper's tools could not provide).
  Table balance({"Phase", "Busy s per thread (min..max)", "Imbalance (max/mean)"});
  for (const auto& [key, label] : phase_names) {
    const int tag = key.back() - '0';
    std::vector<double> busy(static_cast<std::size_t>(threads), 0.0);
    for (int t = 0; t < threads; ++t) {
      for (const auto& e : log.events_of(t)) {
        if (e.tag == tag) busy[static_cast<std::size_t>(t)] += e.end - e.begin;
      }
    }
    double lo = busy[0], hi = busy[0];
    for (double b : busy) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    balance.row(label, Table::fixed(lo, 3) + " .. " + Table::fixed(hi, 3),
                Table::fixed(imbalance_ratio(busy), 3));
  }
  std::cout << '\n';
  balance.print(std::cout, "Exact per-thread balance (event log)");

  std::cout << "\nFinal energy: " << Table::fixed(units::to_ev(engine.total_energy()), 2)
            << " eV after " << engine.rebuild_count() << " neighbor rebuilds\n";
  return 0;
}
