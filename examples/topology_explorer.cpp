// Topology explorer: the hwloc-style view of Section V-C, for the host this
// process runs on and for the paper's three reference machines — plus a
// live thread-pinning demonstration using the sched_setaffinity wrapper.
//
//   $ ./build/examples/topology_explorer
#include <iostream>

#include "common/table.hpp"
#include "parallel/affinity.hpp"
#include "topo/topology.hpp"

int main() {
  using namespace mwx;

  std::cout << "=== Host machine (discovered from /sys) ===\n";
  const topo::MachineSpec host = topo::discover_host();
  topo::Topology host_topo(host);
  std::cout << host_topo.render() << '\n';

  std::cout << "=== The paper's reference machines (Table II) ===\n";
  for (const auto& spec : topo::table2_machines()) {
    topo::Topology t(spec);
    std::cout << t.render();
    Table queries({"Query", "Answer"});
    queries.row("PUs sharing PU 0's LLC", t.pus_sharing_cache(3, 0).to_string());
    queries.row("SMT siblings of PU 0", t.smt_siblings(0).to_string());
    queries.row("distance PU0 <-> last PU",
                std::to_string(t.distance_class(0, t.n_pus() - 1)) +
                    " (0=same,1=SMT,2=LLC,3=package,4=cross)");
    std::string per_core;
    for (int pu : t.one_pu_per_core()) per_core += std::to_string(pu) + " ";
    queries.row("one PU per core (first 8)", per_core.substr(0, 24) + "...");
    queries.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== Live pinning (the JNI sched_setaffinity wrapper) ===\n";
  std::cout << "running on cpu " << parallel::current_cpu() << ", affinity "
            << parallel::current_affinity().to_string() << '\n';
  if (parallel::pin_current_thread_to(0)) {
    std::cout << "pinned to PU 0 -> now on cpu " << parallel::current_cpu()
              << ", affinity " << parallel::current_affinity().to_string() << '\n';
  } else {
    std::cout << "pinning unavailable on this host (continuing unpinned)\n";
  }
  return 0;
}
